package stats

import "encoding/binary"

// Run is a detected data-like byte range [From, To).
type Run struct {
	From, To int
}

// Len returns the run length.
func (r Run) Len() int { return r.To - r.From }

func printable(b byte) bool {
	return b >= 0x20 && b < 0x7f || b == '\t' || b == '\n' || b == '\r'
}

// PrintableRuns finds printable-ASCII runs of at least minLen characters
// that are NUL-terminated — the signature of inline string islands — or
// that end exactly at the section boundary. The boundary case is
// deliberately included: a string island placed last in the section has
// its terminator (or its next sibling) in the following section, and
// dropping the run would misclassify the trailing string as code. The
// returned range includes the terminating NUL(s), if present.
func PrintableRuns(code []byte, minLen int) []Run {
	var out []Run
	i := 0
	for i < len(code) {
		if !printable(code[i]) {
			i++
			continue
		}
		j := i
		for j < len(code) && printable(code[j]) {
			j++
		}
		if j-i >= minLen && (j == len(code) || code[j] == 0) {
			end := j
			for end < len(code) && code[end] == 0 {
				end++
			}
			out = append(out, Run{i, end})
		}
		i = j + 1
	}
	return out
}

// FillRuns finds runs of an identical fill byte (0x00 or 0xCC) of at least
// minLen bytes — linker and MSVC-style padding.
func FillRuns(code []byte, minLen int) []Run {
	var out []Run
	i := 0
	for i < len(code) {
		b := code[i]
		if b != 0x00 && b != 0xcc {
			i++
			continue
		}
		j := i
		for j < len(code) && code[j] == b {
			j++
		}
		if j-i >= minLen {
			out = append(out, Run{i, j})
		}
		i = j
	}
	return out
}

// PointerArrays finds runs of at least minEntries consecutive 8-byte
// little-endian values that all point inside [base, base+len(code)) — the
// signature of absolute jump tables and vtables embedded in text. Runs are
// reported greedily at every alignment; overlapping runs are merged.
func PointerArrays(code []byte, base uint64, minEntries int) []Run {
	limit := base + uint64(len(code))
	var out []Run
	i := 0
	for i+8 <= len(code) {
		v := binary.LittleEndian.Uint64(code[i:])
		if v < base || v >= limit {
			i++
			continue
		}
		j := i
		n := 0
		for j+8 <= len(code) {
			v := binary.LittleEndian.Uint64(code[j:])
			if v < base || v >= limit {
				break
			}
			n++
			j += 8
		}
		if n >= minEntries {
			if k := len(out); k > 0 && out[k-1].To >= i {
				if j > out[k-1].To {
					out[k-1].To = j
				}
			} else {
				out = append(out, Run{i, j})
			}
			i = j
			continue
		}
		i++
	}
	return out
}

// OffsetTables finds runs of at least minEntries consecutive 4-byte values
// that, interpreted as signed offsets relative to the run start, all land
// inside the section — the signature of PIC jump tables.
func OffsetTables(code []byte, minEntries int) []Run {
	var out []Run
	n := len(code)
	for i := 0; i+4 <= n; {
		j := i
		cnt := 0
		for j+4 <= n {
			v := int64(int32(binary.LittleEndian.Uint32(code[j:])))
			t := int64(i) + v
			// Offsets must be non-trivial and land in-section; an offset
			// of 0 (table pointing at itself) is implausible.
			if t < 0 || t >= int64(n) || v == 0 {
				break
			}
			cnt++
			j += 4
		}
		if cnt >= minEntries {
			if k := len(out); k > 0 && out[k-1].To >= i {
				if j > out[k-1].To {
					out[k-1].To = j
				}
			} else {
				out = append(out, Run{i, j})
			}
			i = j
			continue
		}
		i++
	}
	return out
}
