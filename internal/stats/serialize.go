package stats

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization format: a finalized model's log-probability tables stored
// as float32 (the precision the scorer effectively uses), little-endian:
//
//	magic "PDMD" | version u32 | per ngram: uniLogP [numTok]f32,
//	bi [numTok*numTok]f32  (code model first, then data model)
//
// Only finalized models serialise; the raw counts are not kept.
const (
	modelMagic   = "PDMD"
	modelVersion = 1
)

// WriteTo serialises a finalized model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	if !m.Ready() {
		return 0, fmt.Errorf("stats: cannot serialise an unfinalized model")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := write([]byte(modelMagic)); err != nil {
		return n, err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], modelVersion)
	if err := write(v[:]); err != nil {
		return n, err
	}
	for _, g := range []*ngram{m.code, m.data} {
		buf := make([]byte, 4*numTok)
		for i, f := range g.uniLogP {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(f)))
		}
		if err := write(buf); err != nil {
			return n, err
		}
		row := make([]byte, 4*numTok)
		for a := 0; a < numTok; a++ {
			for b := 0; b < numTok; b++ {
				binary.LittleEndian.PutUint32(row[4*b:],
					math.Float32bits(float32(g.bi[a*numTok+b])))
			}
			if err := write(row); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadModel deserialises a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("stats: reading model header: %w", err)
	}
	if string(head[:4]) != modelMagic {
		return nil, fmt.Errorf("stats: bad model magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != modelVersion {
		return nil, fmt.Errorf("stats: unsupported model version %d", v)
	}
	m := NewModel()
	for _, g := range []*ngram{m.code, m.data} {
		buf := make([]byte, 4*numTok)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("stats: reading unigram table: %w", err)
		}
		for i := range g.uniLogP {
			g.uniLogP[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		row := make([]byte, 4*numTok)
		for a := 0; a < numTok; a++ {
			if _, err := io.ReadFull(br, row); err != nil {
				return nil, fmt.Errorf("stats: reading bigram row %d: %w", a, err)
			}
			for b := 0; b < numTok; b++ {
				g.bi[a*numTok+b] = float64(math.Float32frombits(binary.LittleEndian.Uint32(row[4*b:])))
			}
		}
		g.final = true
	}
	m.buildDiff()
	return m, nil
}
