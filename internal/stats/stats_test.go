package stats

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"testing"

	"probedis/internal/superset"
	"probedis/internal/synth"
	"probedis/internal/x86"
)

// trainModel fits a model on a small corpus (seeds disjoint from eval).
func trainModel(t testing.TB) *Model {
	t.Helper()
	m := NewModel()
	for seed, p := range map[int64]synth.Profile{
		1001: synth.ProfileO0, 1002: synth.ProfileO2, 1003: synth.ProfileComplex,
	} {
		b, err := synth.Generate(synth.Config{Seed: seed, Profile: p, NumFuncs: 60})
		if err != nil {
			t.Fatal(err)
		}
		g := superset.Build(b.Code, b.Base)
		m.AddCode(g, b.Truth.InstStart)
		isData := make([]bool, len(b.Code))
		for i, c := range b.Truth.Classes {
			isData[i] = c.IsData()
		}
		m.AddData(g, isData)
	}
	rng := rand.New(rand.NewSource(99))
	soup := make([]byte, 1<<14)
	rng.Read(soup)
	m.AddRandomData(soup, 0x500000)
	m.Finalize()
	return m
}

// TestModelDiscriminates: on a held-out binary, true instruction starts
// must score higher on average than data offsets, with a usable margin.
func TestModelDiscriminates(t *testing.T) {
	m := trainModel(t)
	b, err := synth.Generate(synth.Config{Seed: 42, Profile: synth.ProfileComplex, NumFuncs: 60})
	if err != nil {
		t.Fatal(err)
	}
	g := superset.Build(b.Code, b.Base)
	scores := m.ScoreAll(g, 8)

	var codeSum, dataSum float64
	var codeN, dataN int
	var codePos, dataPos int // how many score > 0
	for off := range scores {
		if scores[off] <= -1e8 {
			continue
		}
		switch {
		case b.Truth.InstStart[off]:
			codeSum += scores[off]
			codeN++
			if scores[off] > 0 {
				codePos++
			}
		case b.Truth.Classes[off].IsData():
			dataSum += scores[off]
			dataN++
			if scores[off] > 0 {
				dataPos++
			}
		}
	}
	if codeN == 0 || dataN == 0 {
		t.Fatalf("degenerate corpus: codeN=%d dataN=%d", codeN, dataN)
	}
	codeMean, dataMean := codeSum/float64(codeN), dataSum/float64(dataN)
	t.Logf("code mean=%.3f (%d/%d positive), data mean=%.3f (%d/%d positive)",
		codeMean, codePos, codeN, dataMean, dataPos, dataN)
	if codeMean <= dataMean+0.5 {
		t.Errorf("model does not discriminate: code %.3f vs data %.3f", codeMean, dataMean)
	}
	if float64(codePos)/float64(codeN) < 0.80 {
		t.Errorf("only %d/%d true instructions score positive", codePos, codeN)
	}
	if float64(dataPos)/float64(dataN) > 0.50 {
		t.Errorf("%d/%d data offsets score positive", dataPos, dataN)
	}
}

func TestLogOddsInvalidStart(t *testing.T) {
	m := trainModel(t)
	g := superset.Build([]byte{0x06, 0x90}, 0) // invalid first byte
	s, steps := m.LogOdds(g, 0, 8)
	if steps != 0 || s > -1e8 {
		t.Errorf("invalid start: score=%v steps=%d", s, steps)
	}
}

func TestTokenSpace(t *testing.T) {
	cases := []struct {
		bytes []byte
		lo    int
	}{
		{[]byte{0x90}, 0},                              // one-byte map
		{[]byte{0x0f, 0x05}, 256},                      // 0F map
		{[]byte{0x66, 0x0f, 0x38, 0x40, 0xc1}, 512},    // 38 map
		{[]byte{0x66, 0x0f, 0x3a, 0x22, 0xc0, 1}, 768}, // 3A map
	}
	for _, c := range cases {
		inst, err := x86.Decode(c.bytes, 0)
		if err != nil {
			t.Fatal(err)
		}
		tok := Token(&inst)
		if tok < c.lo || tok >= c.lo+256 {
			t.Errorf("Token(% x) = %d, want in [%d,%d)", c.bytes, tok, c.lo, c.lo+256)
		}
	}
}

func TestPrintableRuns(t *testing.T) {
	code := append([]byte{0x90, 0x90}, []byte("hello world")...)
	code = append(code, 0, 0)
	code = append(code, 0xc3)
	runs := PrintableRuns(code, 6)
	if len(runs) != 1 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0].From != 2 || runs[0].To != 2+11+2 {
		t.Errorf("run = %+v", runs[0])
	}
	// Short strings are not flagged.
	if runs := PrintableRuns([]byte("hi\x00"), 6); len(runs) != 0 {
		t.Errorf("short string flagged: %v", runs)
	}
	// Printable run terminated by a non-NUL, non-printable byte is not
	// flagged. (A run reaching the section end IS flagged — see
	// TestPrintableRunsBoundaries.)
	if runs := PrintableRuns(append([]byte("just text no nul"), 0x90), 6); len(runs) != 0 {
		t.Errorf("unterminated run flagged: %v", runs)
	}
}

// TestPrintableRunsBoundaries pins the section-edge behavior: a printable
// run ending exactly at the section end counts as terminated (the NUL of a
// section-final string island lives in the next section), while interior
// runs still require a NUL.
func TestPrintableRunsBoundaries(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		min  int
		want []Run
	}{
		{"interior NUL-terminated", []byte("\x90abcdef\x00\x90"), 6, []Run{{1, 8}}},
		{"ends at section end, no NUL", []byte("\x90abcdefgh"), 6, []Run{{1, 9}}},
		{"whole section printable", []byte("abcdefgh"), 6, []Run{{0, 8}}},
		{"NUL exactly at section end", []byte("\x90abcdef\x00"), 6, []Run{{1, 8}}},
		{"interior run, non-NUL terminator", []byte("\x90abcdef\x90\x90"), 6, nil},
		{"too short at section end", []byte("\x90abc"), 6, nil},
		{"trailing NULs absorbed", []byte("abcdef\x00\x00\x00"), 6, []Run{{0, 9}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := PrintableRuns(c.in, c.min)
			if len(got) != len(c.want) {
				t.Fatalf("runs = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("run %d = %+v, want %+v", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestFillRunsEdges pins fill-run detection at both section edges.
func TestFillRunsEdges(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		min  int
		want []Run
	}{
		{"run at section start", append(make([]byte, 8), 0xc3), 8, []Run{{0, 8}}},
		{"run at section end", append([]byte{0xc3}, make([]byte, 8)...), 8, []Run{{1, 9}}},
		{"whole section fill", make([]byte, 8), 8, []Run{{0, 8}}},
		{"int3 fill at end", []byte{0xc3, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc}, 8, []Run{{1, 9}}},
		{"short run at end", append([]byte{0xc3}, make([]byte, 7)...), 8, nil},
		{"mixed fill bytes do not merge", []byte{0, 0, 0, 0, 0xcc, 0xcc, 0xcc, 0xcc}, 8, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := FillRuns(c.in, c.min)
			if len(got) != len(c.want) {
				t.Fatalf("runs = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("run %d = %+v, want %+v", i, got[i], c.want[i])
				}
			}
		})
	}
}

func TestFillRuns(t *testing.T) {
	code := []byte{0xc3}
	code = append(code, make([]byte, 12)...)
	code = append(code, 0xc3)
	for i := 0; i < 9; i++ {
		code = append(code, 0xcc)
	}
	runs := FillRuns(code, 8)
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0].Len() != 12 || runs[1].Len() != 9 {
		t.Errorf("runs = %v", runs)
	}
	if runs := FillRuns(make([]byte, 7), 8); len(runs) != 0 {
		t.Errorf("short fill flagged: %v", runs)
	}
}

func TestPointerArrays(t *testing.T) {
	base := uint64(0x400000)
	code := make([]byte, 64)
	// Three in-range pointers at offset 8.
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(code[8+8*i:], base+uint64(16*i))
	}
	runs := PointerArrays(code, base, 3)
	if len(runs) != 1 || runs[0].From > 8 || runs[0].To < 32 {
		t.Fatalf("runs = %v", runs)
	}
	// Out-of-range values are not pointers. (All-zero bytes point below base.)
	if runs := PointerArrays(make([]byte, 64), base, 2); len(runs) != 0 {
		t.Errorf("zeros flagged as pointers: %v", runs)
	}
}

func TestOffsetTables(t *testing.T) {
	code := make([]byte, 64)
	// Offsets 16, 20, 24 relative to the table at offset 0.
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(code[4*i:], uint32(16+4*i))
	}
	runs := OffsetTables(code, 4)
	if len(runs) == 0 || runs[0].From != 0 {
		t.Fatalf("runs = %v", runs)
	}
}

func BenchmarkScoreAll(b *testing.B) {
	m := trainModel(b)
	bin, err := synth.Generate(synth.Config{Seed: 50, Profile: synth.ProfileO2, NumFuncs: 60})
	if err != nil {
		b.Fatal(err)
	}
	g := superset.Build(bin.Code, bin.Base)
	b.SetBytes(int64(len(bin.Code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreAll(g, 8)
	}
}

// TestScoreAllParallelMatchesSerial forces the parallel scoring path and
// requires identical output with the serial path.
func TestScoreAllParallelMatchesSerial(t *testing.T) {
	m := trainModel(t)
	b, err := synth.Generate(synth.Config{Seed: 55, Profile: synth.ProfileComplex, NumFuncs: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Code) < 1<<14 {
		t.Fatalf("binary too small to exercise the parallel path: %d", len(b.Code))
	}
	g := superset.Build(b.Code, b.Base)

	prev := runtime.GOMAXPROCS(4)
	par := m.ScoreAll(g, 8)
	runtime.GOMAXPROCS(1)
	ser := m.ScoreAll(g, 8)
	runtime.GOMAXPROCS(prev)

	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("score differs at +%#x: %v vs %v", i, par[i], ser[i])
		}
	}
}
