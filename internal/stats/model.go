// Package stats implements the data-driven probabilistic side of the
// disassembler: Markov models over instruction-token sequences that
// separate real code from data decoded as code, plus raw-byte detectors
// (printable strings, fill runs, pointer arrays) that recognise the
// statistical signatures of embedded data.
//
// The models are trained on a corpus disjoint from anything being
// evaluated (see core.DefaultModel) — mirroring the paper's train/test
// separation for its data-driven techniques.
package stats

import (
	"math"
	"runtime"
	"sync"

	"probedis/internal/superset"
	"probedis/internal/x86"
)

// numTok is the token vocabulary size: 4 opcode maps x 256 opcodes.
const numTok = 4 * 256

// Token quantises an instruction for the sequence models: its opcode map
// and opcode byte. Operand bytes are deliberately excluded — it is the
// opcode sequence whose statistics differ most sharply between code and
// data. The superset graph precomputes the same token into its packed
// side-table (superset.Info.Tok), which the scoring loops read directly.
func Token(inst *x86.Inst) int {
	return int(inst.TokenID())
}

// ngram is a bigram model with additive smoothing.
type ngram struct {
	uni    [numTok]float64
	bi     []float64 // numTok*numTok counts, then log-probs after finalize
	uniTot float64

	uniLogP [numTok]float64
	final   bool
}

func newNgram() *ngram {
	return &ngram{bi: make([]float64, numTok*numTok)}
}

func (n *ngram) addPair(a, b int) {
	n.uni[a]++
	n.uniTot++
	n.bi[a*numTok+b]++
}

func (n *ngram) addOne(a int) {
	n.uni[a]++
	n.uniTot++
}

const alpha = 0.5 // additive smoothing

func (n *ngram) finalize() {
	rowTot := make([]float64, numTok)
	for a := 0; a < numTok; a++ {
		var t float64
		for b := 0; b < numTok; b++ {
			t += n.bi[a*numTok+b]
		}
		rowTot[a] = t
	}
	for a := 0; a < numTok; a++ {
		den := math.Log(rowTot[a] + alpha*numTok)
		for b := 0; b < numTok; b++ {
			n.bi[a*numTok+b] = math.Log(n.bi[a*numTok+b]+alpha) - den
		}
		n.uniLogP[a] = math.Log(n.uni[a]+alpha) - math.Log(n.uniTot+alpha*numTok)
	}
	n.final = true
}

func (n *ngram) logP(a, b int) float64 { return n.bi[a*numTok+b] }

// Model scores superset decode chains with a code model vs a data model.
type Model struct {
	code *ngram
	data *ngram

	// biDiff/uniDiff cache code-minus-data log-probabilities once a model
	// is finalized: the scoring loop probes one table instead of two
	// 8 MiB ones, halving its cache footprint. Each entry is the same
	// code-minus-data subtraction LogOdds would otherwise evaluate per
	// probe, so scores are bit-identical.
	biDiff  []float64
	uniDiff [numTok]float64
}

// buildDiff populates the difference tables from the finalized ngrams.
func (m *Model) buildDiff() {
	m.biDiff = make([]float64, numTok*numTok)
	for i := range m.biDiff {
		m.biDiff[i] = m.code.bi[i] - m.data.bi[i]
	}
	for a := 0; a < numTok; a++ {
		m.uniDiff[a] = m.code.uniLogP[a] - m.data.uniLogP[a]
	}
}

// NewModel returns an empty, untrained model.
func NewModel() *Model {
	return &Model{code: newNgram(), data: newNgram()}
}

// AddCode trains the code model from ground-truth instruction starts over a
// superset graph (pairs of adjacent instructions in layout order).
func (m *Model) AddCode(g *superset.Graph, instStart []bool) {
	prev := -1
	for off := 0; off < g.Len(); off++ {
		if !instStart[off] || !g.Valid(off) {
			continue
		}
		tok := int(g.At(off).Tok)
		if prev >= 0 {
			m.code.addPair(prev, tok)
		} else {
			m.code.addOne(tok)
		}
		prev = tok
	}
}

// AddData trains the data model from decode chains beginning inside data
// regions: for each data offset with a valid decode, the pair (token,
// token-at-fallthrough).
func (m *Model) AddData(g *superset.Graph, isData []bool) {
	for off := 0; off < g.Len(); off++ {
		e := g.At(off)
		if !isData[off] || !e.Valid() {
			continue
		}
		tok := int(e.Tok)
		next := off + int(e.Len)
		if next < g.Len() && g.Valid(next) {
			m.data.addPair(tok, int(g.At(next).Tok))
		} else {
			m.data.addOne(tok)
		}
	}
}

// AddRandomData trains the data model on arbitrary byte soup (a useful
// prior for data kinds absent from the training corpus).
func (m *Model) AddRandomData(code []byte, base uint64) {
	g := superset.Build(code, base)
	all := make([]bool, len(code))
	for i := range all {
		all[i] = true
	}
	m.AddData(g, all)
}

// Finalize converts counts into log-probabilities. Must be called once
// after training and before scoring.
func (m *Model) Finalize() {
	m.code.finalize()
	m.data.finalize()
	m.buildDiff()
}

// Ready reports whether Finalize has run.
func (m *Model) Ready() bool { return m.code.final }

// LogOdds scores the decode chain starting at off: the summed
// log(P_code/P_data) over up to window chain steps. Positive means
// code-like. steps is the number of tokens scored; an invalid start yields
// (-inf substitute, 0).
func (m *Model) LogOdds(g *superset.Graph, off, window int) (score float64, steps int) {
	if !g.Valid(off) {
		return -1e9, 0
	}
	prev := -1
	for n := 0; n < window; n++ {
		if off >= g.Len() {
			break
		}
		e := g.At(off)
		if !e.Valid() {
			break
		}
		tok := int(e.Tok)
		if prev < 0 {
			score += m.uniDiff[tok]
		} else {
			score += m.biDiff[prev*numTok+tok]
		}
		steps++
		prev = tok
		if !e.Flow.HasFallthrough() {
			// Follow direct jumps so short blocks still get a full window.
			if t := g.TargetOff(off); t >= 0 && (e.Flow == x86.FlowJump) {
				off = t
				continue
			}
			break
		}
		off += int(e.Len)
	}
	return score, steps
}

// ScoreAll computes the per-offset normalized log-odds (score/steps) for
// every offset; invalid offsets get large negative values. Offsets are
// independent, so large sections are scored in parallel (deterministic).
func (m *Model) ScoreAll(g *superset.Graph, window int) []float64 {
	out := make([]float64, g.Len())
	m.ScoreAllInto(out, g, window)
	return out
}

// ScoreAllInto is ScoreAll writing into out, which must have length
// g.Len(). It exists so the pipeline can recycle score slices through a
// buffer pool instead of allocating one per section.
func (m *Model) ScoreAllInto(out []float64, g *superset.Graph, window int) {
	if len(out) != g.Len() {
		panic("stats: ScoreAllInto buffer length mismatch")
	}
	scoreRange := func(from, to int) {
		for off := from; off < to; off++ {
			s, n := m.LogOdds(g, off, window)
			if n == 0 {
				out[off] = -1e9
				continue
			}
			out[off] = s / float64(n)
		}
	}
	const parallelThreshold = 1 << 14
	workers := runtime.GOMAXPROCS(0)
	if g.Len() < parallelThreshold || workers == 1 {
		scoreRange(0, g.Len())
		return
	}
	m.scoreAllParallel(out, g, window, workers, scoreRange)
}

// ScoreRangesInto computes the same per-offset values ScoreAllInto would
// (each offset's LogOdds depends only on the graph, never on neighbouring
// scores) restricted to the half-open windows [w[0], w[1]); offsets
// outside every window are left untouched. The tiered pipeline scores
// only the contested windows this way — the values at those offsets are
// bit-identical to a full scoring pass. Windows out of range are clamped;
// len(out) must equal g.Len().
func (m *Model) ScoreRangesInto(out []float64, g *superset.Graph, window int, windows [][2]int) {
	if len(out) != g.Len() {
		panic("stats: ScoreRangesInto buffer length mismatch")
	}
	for _, w := range windows {
		from, to := w[0], w[1]
		if from < 0 {
			from = 0
		}
		if to > g.Len() {
			to = g.Len()
		}
		for off := from; off < to; off++ {
			s, n := m.LogOdds(g, off, window)
			if n == 0 {
				out[off] = -1e9
				continue
			}
			out[off] = s / float64(n)
		}
	}
}

// ScoreWindowInto computes the per-offset values of [from, to) into a
// window-relative buffer: out[i] receives the score of offset from+i.
// Values are bit-identical to the corresponding slice of a full scoring
// pass (LogOdds reads only the graph). The sharded tiered pipeline uses
// it to keep one small buffer per contested window instead of a
// section-length slice. len(out) must be at least to-from.
func (m *Model) ScoreWindowInto(out []float64, g *superset.Graph, window, from, to int) {
	if from < 0 {
		from = 0
	}
	if to > g.Len() {
		to = g.Len()
	}
	for off := from; off < to; off++ {
		s, n := m.LogOdds(g, off, window)
		if n == 0 {
			out[off-from] = -1e9
			continue
		}
		out[off-from] = s / float64(n)
	}
}

// scoreAllParallel fans ScoreAllInto's per-offset loop out over the
// worker count (offsets are independent, so chunking is deterministic).
func (m *Model) scoreAllParallel(out []float64, g *superset.Graph, window, workers int, scoreRange func(from, to int)) {
	var wg sync.WaitGroup
	chunk := (g.Len() + workers - 1) / workers
	for from := 0; from < g.Len(); from += chunk {
		to := from + chunk
		if to > g.Len() {
			to = g.Len()
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			scoreRange(a, b)
		}(from, to)
	}
	wg.Wait()
}
