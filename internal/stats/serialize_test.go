package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"probedis/internal/superset"
	"probedis/internal/synth"
)

func TestModelRoundTrip(t *testing.T) {
	m := trainModel(t)
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Ready() {
		t.Fatal("deserialised model not ready")
	}

	// Scores must agree to float32 precision on a held-out binary.
	b, err := synth.Generate(synth.Config{Seed: 96, Profile: synth.ProfileO2, NumFuncs: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := superset.Build(b.Code, b.Base)
	s1 := m.ScoreAll(g, 8)
	s2 := m2.ScoreAll(g, 8)
	for i := range s1 {
		if s1[i] <= -1e8 {
			if s2[i] > -1e8 {
				t.Fatalf("offset %d: invalid marker lost", i)
			}
			continue
		}
		if math.Abs(s1[i]-s2[i]) > 1e-3*(1+math.Abs(s1[i])) {
			t.Fatalf("offset %d: score %v != %v", i, s1[i], s2[i])
		}
	}
	// Classification sign must be identical (what the pipeline consumes).
	for i := range s1 {
		if (s1[i] > 0) != (s2[i] > 0) && math.Abs(s1[i]) > 1e-3 {
			t.Fatalf("offset %d: classification flipped (%v vs %v)", i, s1[i], s2[i])
		}
	}
}

func TestWriteUnfinalized(t *testing.T) {
	m := NewModel()
	if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error serialising unfinalized model")
	}
}

func TestReadModelErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"XXXX\x01\x00",         // bad magic
		"PDMD\xff\x00\x00\x00", // bad version
		"PDMD\x01\x00\x00\x00", // truncated tables
	}
	for _, c := range cases {
		if _, err := ReadModel(strings.NewReader(c)); err == nil {
			t.Errorf("ReadModel(%q...) succeeded", c[:min(len(c), 4)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
