package eval

import (
	"strings"
	"testing"

	"probedis/internal/synth"
)

// TestPinnedManifestCurrent: the committed pins match what the generator
// actually produces, and every named profile — compiler-style and
// adversarial — is covered. A generator change that shifts any pinned
// RNG stream fails here before it can skew accdiff comparisons.
func TestPinnedManifestCurrent(t *testing.T) {
	m := PinnedManifest()
	corpus, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, pc := range corpus {
		covered[pc.Profile] = true
		if len(pc.Binaries) == 0 {
			t.Errorf("profile %q: no binaries", pc.Profile)
		}
	}
	for _, p := range synth.AllProfiles() {
		if !covered[p.Name] {
			t.Errorf("profile %q missing from pinned manifest", p.Name)
		}
	}
}

// TestManifestRejects: every way the pinned corpus can drift is refused
// with a diagnosable error, table-driven over mutations of the real
// manifest.
func TestManifestRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Manifest)
		wantErr string
	}{
		{
			name:    "hash pin mismatch",
			mutate:  func(m *Manifest) { m.Entries[0].SHA256 = strings.Repeat("0", 64) },
			wantErr: "corpus drift",
		},
		{
			name:    "seed drift",
			mutate:  func(m *Manifest) { m.Entries[3].FirstSeed++ },
			wantErr: "corpus drift",
		},
		{
			name:    "funcs drift",
			mutate:  func(m *Manifest) { m.Entries[1].Funcs = 41 },
			wantErr: "corpus drift",
		},
		{
			name:    "count drift",
			mutate:  func(m *Manifest) { m.Entries[2].Count = 3 },
			wantErr: "corpus drift",
		},
		{
			name:    "unknown profile",
			mutate:  func(m *Manifest) { m.Entries[0].Profile = "msvc-O3" },
			wantErr: "unknown profile",
		},
		{
			name:    "duplicate profile",
			mutate:  func(m *Manifest) { m.Entries[1].Profile = m.Entries[0].Profile },
			wantErr: "twice",
		},
		{
			name:    "wrong version",
			mutate:  func(m *Manifest) { m.Version = ManifestVersion + 1 },
			wantErr: "version",
		},
		{
			name:    "no entries",
			mutate:  func(m *Manifest) { m.Entries = nil },
			wantErr: "no entries",
		},
		{
			name:    "zero count",
			mutate:  func(m *Manifest) { m.Entries[0].Count = 0 },
			wantErr: "want > 0",
		},
		{
			name:    "training seed overlap",
			mutate:  func(m *Manifest) { m.Entries[0].FirstSeed = 1_000_000 },
			wantErr: "evaluation range",
		},
		{
			name: "overlapping seed spans",
			mutate: func(m *Manifest) {
				m.Entries[1].FirstSeed = m.Entries[0].FirstSeed + int64(m.Entries[0].Count) - 1
			},
			wantErr: "share seeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := PinnedManifest()
			// Deep-copy entries so mutations stay local to the case.
			m.Entries = append([]ManifestEntry(nil), m.Entries...)
			tc.mutate(&m)
			_, err := m.Build()
			if err == nil {
				t.Fatal("tampered manifest built cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestManifestEntryDeterministic: Compute is a pure function of the
// entry — two runs hash identically, the property the pins rely on.
func TestManifestEntryDeterministic(t *testing.T) {
	e := PinnedManifest().Entries[0]
	_, a, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same entry hashed %s then %s", a, b)
	}
}
