package eval

import (
	"encoding/binary"
	"fmt"

	"probedis/internal/cfg"
	"probedis/internal/core"
	"probedis/internal/dis"
	"probedis/internal/emu"
	"probedis/internal/rewrite"
	"probedis/internal/superset"
	"probedis/internal/synth"
)

// E2Rewrite is the instrumentation experiment: every engine's
// classification is fed to the static rewriter, the rewritten binary is
// instrumented with basic-block counters and moved to a new base, and both
// images are executed in the emulator. A binary counts as a success only
// if the rewritten image behaves identically AND its probe counters match
// the true per-block execution counts. This is the downstream task that
// motivates metadata-free accuracy: inaccurate disassembly produces
// rewritten binaries that crash or silently diverge.
func (r *Runner) E2Rewrite() (Table, error) {
	t := Table{
		ID:    "E2",
		Title: "Extension: instrumentation (rewrite + execute) success rate",
		Columns: []string{"engine", "rewrite-ok", "behave-ok", "counts-ok",
			"success"},
	}
	var corpus []*synth.Binary
	for seed := int64(1); seed <= 8; seed++ {
		b, err := synth.Generate(synth.Config{
			Seed: seed, Profile: synth.ProfileComplex, NumFuncs: 8,
		})
		if err != nil {
			return t, err
		}
		corpus = append(corpus, b)
	}

	coreEngine := core.New(r.Model)
	for _, e := range r.engines() {
		var rewriteOK, behaveOK, countsOK, comparable int
		for _, b := range corpus {
			entry := int(b.Entry - b.Base)
			var det *core.Detail
			if e.Name() == coreEngine.Name() {
				det = coreEngine.DisassembleDetail(b.Code, b.Base, entry)
			} else {
				det = detailFor(e.Disassemble(b.Code, b.Base, entry), b)
			}
			out, err := rewrite.Rewrite(det, rewrite.Options{
				NewBase: 0x600000, Probe: true, Entry: b.Entry,
			})
			if err != nil {
				comparable++
				continue
			}
			rewriteOK++

			blockIdx := map[uint64]int{}
			for i, s := range det.CFG.Starts() {
				blockIdx[b.Base+uint64(s)] = i
			}
			const fuel = 150000
			origCounts := map[int]uint64{}
			m := emu.New(b.Code, b.Base)
			m.OnStep = func(pc uint64) {
				if i, ok := blockIdx[pc]; ok {
					origCounts[i]++
				}
			}
			origOut := m.Run(b.Entry, fuel)

			counters := make([]byte, out.CounterLen)
			m2 := emu.New(out.Code, out.Base)
			m2.Map(emu.Region{Base: out.CounterBase, Data: counters})
			newOut := m2.Run(out.Entry, fuel+out.Probes*1000)

			if origOut.Stop == emu.StopFuel || newOut.Stop == emu.StopFuel {
				rewriteOK-- // not comparable; drop from the denominator
				continue
			}
			comparable++
			if origOut.Stop != newOut.Stop || origOut.Trap != newOut.Trap {
				continue
			}
			behaveOK++
			if origOut.Stop == emu.StopTrap {
				countsOK++ // counts are cut mid-block at a trap; kind match suffices
				continue
			}
			ok := true
			for i := range det.CFG.Starts() {
				var got uint64
				if 4*i+4 <= len(counters) {
					got = uint64(binary.LittleEndian.Uint32(counters[4*i:]))
				}
				if got != origCounts[i] {
					ok = false
					break
				}
			}
			if ok {
				countsOK++
			}
		}
		if comparable == 0 {
			comparable = 1
		}
		t.AddRow(e.Name(),
			fmt.Sprintf("%d/%d", rewriteOK, comparable),
			fmt.Sprintf("%d/%d", behaveOK, comparable),
			fmt.Sprintf("%d/%d", countsOK, comparable),
			fmtPct(ratio(countsOK, comparable)))
	}
	return t, nil
}

// detailFor wraps a baseline engine's result in the Detail shape the
// rewriter consumes: its own CFG, and no jump-table knowledge (baselines
// do not discover tables — which is precisely their handicap here).
func detailFor(res *dis.Result, b *synth.Binary) *core.Detail {
	g := superset.Build(b.Code, b.Base)
	return &core.Detail{
		Result: res,
		Graph:  g,
		CFG:    cfg.Build(g, res.InstStart, res.FuncStarts),
	}
}
