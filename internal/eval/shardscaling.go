package eval

import (
	"fmt"
	"time"

	"probedis/internal/core"
	"probedis/internal/dis"
	"probedis/internal/synth"
)

// T10ShardScaling measures the sharded pipeline (core.WithShardBytes)
// against the whole-section run on one giant synthetic section: wall
// time, throughput, windowed-graph activity (block faults, evictions,
// point reads) and the resident Info side table relative to the eager
// backend's 16 bytes per section byte. Every sharded row's output is
// verified byte-identical to the unsharded reference before it is
// reported — the table is a cost profile of an exactness-preserving
// transformation, not an accuracy trade-off.
func (r *Runner) T10ShardScaling() (Table, error) {
	t := Table{
		ID:      "T10",
		Title:   "Sharded pipeline: shard size vs throughput and residency",
		Columns: []string{"shard", "shards", "time", "MB/s", "faults", "evict", "point-reads", "resident_x", "identical"},
	}

	// One giant section, concatenated from per-profile synthetic binaries
	// at consecutive addresses (the same construction the residency
	// regression test uses).
	const targetBytes = 2 << 20
	base := uint64(0x401000)
	addr := base
	var code []byte
	for seed := int64(500); len(code) < targetBytes; seed++ {
		b, err := synth.Generate(synth.Config{
			Seed:     seed,
			Profile:  synth.DefaultProfiles[int(seed)%len(synth.DefaultProfiles)],
			NumFuncs: 300,
			Base:     addr,
		})
		if err != nil {
			return t, err
		}
		code = append(code, b.Code...)
		addr += uint64(len(b.Code))
	}

	ref := core.New(r.Model, core.WithWorkers(1))
	refStart := time.Now()
	want := ref.DisassembleDetail(code, base, 0)
	refDur := time.Since(refStart)
	mbps := func(d time.Duration) string {
		return fmt.Sprintf("%.1f", float64(len(code))/1e6/d.Seconds())
	}
	t.AddRow("whole-section", "1", refDur.Round(time.Millisecond).String(),
		mbps(refDur), "0", "0", "0", "16.0", "-")

	const infoBytes = 16
	for _, shard := range []int{1 << 20, 256 << 10, 64 << 10} {
		d := core.New(r.Model, core.WithWorkers(1), core.WithShardBytes(shard))
		start := time.Now()
		got := d.DisassembleDetail(code, base, 0)
		dur := time.Since(start)
		faults, evictions := got.Graph.LazyStats()
		blocks, blockBytes := got.Graph.ResidentBlocks()
		residentBytes := blocks * blockBytes
		if residentBytes > len(code) {
			// The tail block is allocated short; blocks*blockBytes
			// overcounts it when the cap covers the whole section.
			residentBytes = len(code)
		}
		resident := float64(residentBytes*infoBytes) / float64(len(code))
		t.AddRow(fmt.Sprintf("%dK", shard>>10), itoa(len(core.ShardPlan(len(code), shard))),
			dur.Round(time.Millisecond).String(), mbps(dur),
			fmt.Sprintf("%d", faults), fmt.Sprintf("%d", evictions),
			fmt.Sprintf("%d", got.Graph.PointReads()), fmt.Sprintf("%.1f", resident),
			identical(want.Result, got.Result))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("section: %d bytes; resident_x = retained Info bytes / section byte (eager backend: 16.0)", len(code)),
		"sharded output is byte-identical to whole-section by construction (oracle.CheckShards); 'identical' re-verifies it here")
	return t, nil
}

// identical reports whether two results agree byte for byte on the
// classification and instruction-start planes plus function starts.
func identical(want, got *dis.Result) string {
	if len(want.IsCode) != len(got.IsCode) || len(want.FuncStarts) != len(got.FuncStarts) {
		return "NO"
	}
	for i := range want.IsCode {
		if want.IsCode[i] != got.IsCode[i] || want.InstStart[i] != got.InstStart[i] {
			return "NO"
		}
	}
	for i := range want.FuncStarts {
		if want.FuncStarts[i] != got.FuncStarts[i] {
			return "NO"
		}
	}
	return "yes"
}
