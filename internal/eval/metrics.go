// Package eval measures disassembly engines against generated ground
// truth and regenerates every table and figure of the evaluation (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results).
package eval

import (
	"fmt"

	"probedis/internal/dis"
	"probedis/internal/synth"
)

// Metrics holds the accuracy measures for one engine on one binary (or
// accumulated across a corpus).
type Metrics struct {
	Bytes     int // total bytes scored
	ByteFP    int // data bytes classified code
	ByteFN    int // code bytes classified data
	TrueInsts int
	InstTP    int
	InstFP    int
	InstFN    int

	TrueFuncs int
	FuncTP    int
	FuncFP    int

	// DataByClass[c] / DataTotal[c]: bytes of ground-truth class c that
	// were (correctly) classified as data, and the class totals.
	DataByClass [synth.NumClasses]int
	DataTotal   [synth.NumClasses]int
}

// Add accumulates m2 into m.
func (m *Metrics) Add(m2 Metrics) {
	m.Bytes += m2.Bytes
	m.ByteFP += m2.ByteFP
	m.ByteFN += m2.ByteFN
	m.TrueInsts += m2.TrueInsts
	m.InstTP += m2.InstTP
	m.InstFP += m2.InstFP
	m.InstFN += m2.InstFN
	m.TrueFuncs += m2.TrueFuncs
	m.FuncTP += m2.FuncTP
	m.FuncFP += m2.FuncFP
	for i := range m.DataByClass {
		m.DataByClass[i] += m2.DataByClass[i]
		m.DataTotal[i] += m2.DataTotal[i]
	}
}

// ByteErrRate is the fraction of bytes misclassified.
func (m *Metrics) ByteErrRate() float64 {
	if m.Bytes == 0 {
		return 0
	}
	return float64(m.ByteFP+m.ByteFN) / float64(m.Bytes)
}

// InstPrecision is TP/(TP+FP) over emitted instructions.
func (m *Metrics) InstPrecision() float64 { return ratio(m.InstTP, m.InstTP+m.InstFP) }

// InstRecall is TP/(TP+FN) over ground-truth instructions.
func (m *Metrics) InstRecall() float64 { return ratio(m.InstTP, m.InstTP+m.InstFN) }

// InstF1 is the harmonic mean of instruction precision and recall.
func (m *Metrics) InstF1() float64 {
	p, r := m.InstPrecision(), m.InstRecall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ErrorFactor is (FP+FN) per 1000 true instructions — the quantity the
// paper's "3X to 4X more accurate" compares.
func (m *Metrics) ErrorFactor() float64 {
	if m.TrueInsts == 0 {
		return 0
	}
	return float64(m.InstFP+m.InstFN) / float64(m.TrueInsts) * 1000
}

// FuncPrecision / FuncRecall cover function-start identification.
func (m *Metrics) FuncPrecision() float64 { return ratio(m.FuncTP, m.FuncTP+m.FuncFP) }

// FuncRecall is TP over ground-truth function count.
func (m *Metrics) FuncRecall() float64 { return ratio(m.FuncTP, m.TrueFuncs) }

// FuncF1 is the harmonic mean of function precision and recall.
func (m *Metrics) FuncF1() float64 {
	p, r := m.FuncPrecision(), m.FuncRecall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// DataRecall returns the detected fraction for a ground-truth data class.
func (m *Metrics) DataRecall(c synth.ByteClass) float64 {
	return ratio(m.DataByClass[c], m.DataTotal[c])
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Score compares an engine result against ground truth.
func Score(b *synth.Binary, res *dis.Result) Metrics {
	if res.Len() != len(b.Code) {
		panic(fmt.Sprintf("eval: result size %d != binary size %d", res.Len(), len(b.Code)))
	}
	return ScoreTruth(b.Truth, res)
}

// ScoreTruth scores a result against bare ground truth, for callers that
// carry no synth.Binary wrapper — the verification oracle scores stitched
// multi-section results of transformed binaries against the original truth.
func ScoreTruth(truth *synth.Truth, res *dis.Result) Metrics {
	var m Metrics
	if res.Len() != len(truth.Classes) {
		panic(fmt.Sprintf("eval: result size %d != truth size %d", res.Len(), len(truth.Classes)))
	}
	m.Bytes = len(truth.Classes)
	for i, cls := range truth.Classes {
		truthCode := cls == synth.ClassCode
		switch {
		case res.IsCode[i] && !truthCode:
			m.ByteFP++
		case !res.IsCode[i] && truthCode:
			m.ByteFN++
		}
		if cls != synth.ClassCode {
			m.DataTotal[cls]++
			if !res.IsCode[i] {
				m.DataByClass[cls]++
			}
		}
		switch {
		case res.InstStart[i] && truth.InstStart[i]:
			m.InstTP++
		case res.InstStart[i]:
			m.InstFP++
		case truth.InstStart[i]:
			m.InstFN++
		}
	}
	m.TrueInsts = m.InstTP + m.InstFN

	truthFuncs := map[int]bool{}
	for _, f := range truth.FuncStarts {
		truthFuncs[f] = true
	}
	m.TrueFuncs = len(truthFuncs)
	for _, f := range res.FuncStarts {
		if truthFuncs[f] {
			m.FuncTP++
		} else {
			m.FuncFP++
		}
	}
	return m
}
