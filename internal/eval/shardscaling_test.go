package eval

import (
	"strings"
	"testing"

	"probedis/internal/dis"
)

func TestT10ShardScaling(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := r.T10ShardScaling()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T10" {
		t.Fatalf("table ID = %q", tab.ID)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (whole-section + 3 shard sizes)", len(tab.Rows))
	}
	idx := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	ident, res, points := idx("identical"), idx("resident_x"), idx("point-reads")
	for _, row := range tab.Rows[1:] {
		if row[ident] != "yes" {
			t.Errorf("shard %s: identical = %q, want yes", row[0], row[ident])
		}
	}
	// Residency must shrink as shards do: the smallest shard size's
	// resident_x is the table's point, well under the eager 16x.
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.HasPrefix(last[0], "64K") {
		t.Fatalf("last row = %s, want the 64K shard", last[0])
	}
	if v := last[res]; !(strings.HasPrefix(v, "2.") || strings.HasPrefix(v, "3.") || strings.HasPrefix(v, "4.")) {
		t.Errorf("64K resident_x = %s, want ~3x (well under 16)", v)
	}
	if last[points] == "0" {
		t.Error("64K shards: expected point reads in the post-scan phases")
	}
}

func TestIdentical(t *testing.T) {
	a := dis.NewResult(0x1000, 4)
	b := dis.NewResult(0x1000, 4)
	a.IsCode[1], b.IsCode[1] = true, true
	a.FuncStarts, b.FuncStarts = []int{1}, []int{1}
	if got := identical(a, b); got != "yes" {
		t.Fatalf("equal results: identical = %q", got)
	}
	b.InstStart[2] = true
	if got := identical(a, b); got != "NO" {
		t.Fatalf("differing InstStart: identical = %q", got)
	}
	b.InstStart[2] = false
	b.FuncStarts = []int{2}
	if got := identical(a, b); got != "NO" {
		t.Fatalf("differing FuncStarts: identical = %q", got)
	}
	c := dis.NewResult(0x1000, 3)
	if got := identical(a, c); got != "NO" {
		t.Fatalf("differing length: identical = %q", got)
	}
}
