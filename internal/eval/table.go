package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: one paper table or one figure's
// data series.
type Table struct {
	ID      string // e.g. "T2", "F1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (ID and title as a comment line),
// ready for external plotting of the figure series.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtPct formats a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
