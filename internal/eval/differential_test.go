package eval

import (
	"sync"
	"testing"

	"probedis/internal/baseline"
	"probedis/internal/core"
	"probedis/internal/dis"
)

// The differential regression suite pins the paper's T2 ordering as a
// per-engine contract rather than a single headline ratio: the full
// system must be strictly best on instruction F1 against EVERY baseline,
// and the statistics-only configuration must already beat the classic
// engines (linear sweep and both recursive variants). A refactor that
// silently weakens one engine or leaks ground truth into another shows
// up here as a broken inequality, with the engine named.

var (
	diffOnce sync.Once
	diffM    map[string]*Metrics
)

// diffMetrics scores every engine once over the shared small corpus and
// caches the result (engines are deterministic; the corpus is seeded).
func diffMetrics(t testing.TB) map[string]*Metrics {
	t.Helper()
	diffOnce.Do(func() {
		r := smallRunner(t)
		diffM = map[string]*Metrics{}
		for _, e := range append([]dis.Engine{core.New(r.Model)}, baseline.Engines(r.Model)...) {
			m := scoreCorpus(e, r.Corpus)
			diffM[e.Name()] = &m
		}
	})
	return diffM
}

func TestDifferentialCoreBeatsEveryBaseline(t *testing.T) {
	m := diffMetrics(t)
	coreF1 := m["probedis"].InstF1()
	if coreF1 <= 0 {
		t.Fatalf("core inst-F1 = %v", coreF1)
	}
	cases := []struct {
		baseline string
		margin   float64 // minimum F1 gap the core must keep
	}{
		{"linear-sweep", 0.01},
		{"recursive", 0.01},
		{"recursive+heur", 0.01},
		{"stat-only", 0}, // strict, but statistics alone get close
	}
	for _, tc := range cases {
		t.Run(tc.baseline, func(t *testing.T) {
			bm, ok := m[tc.baseline]
			if !ok {
				t.Fatalf("baseline %q missing from engine set", tc.baseline)
			}
			if f1 := bm.InstF1(); f1 >= coreF1-tc.margin {
				t.Errorf("%s inst-F1 %.4f not strictly below core %.4f (margin %.2f)",
					tc.baseline, f1, coreF1, tc.margin)
			}
		})
	}
}

// TestDifferentialStatOnlyBeatsClassic: the paper's intermediate claim —
// the statistical model alone (no corrective analyses) already
// outperforms the classic metadata-free engines.
func TestDifferentialStatOnlyBeatsClassic(t *testing.T) {
	m := diffMetrics(t)
	statF1 := m["stat-only"].InstF1()
	for _, classic := range []string{"linear-sweep", "recursive", "recursive+heur"} {
		t.Run(classic, func(t *testing.T) {
			if f1 := m[classic].InstF1(); f1 >= statF1 {
				t.Errorf("%s inst-F1 %.4f >= stat-only %.4f", classic, f1, statF1)
			}
		})
	}
}

// TestDifferentialErrorFactorOrdering mirrors the F1 contract in the
// paper's headline unit (errors per 1k true instructions): core lowest,
// and no baseline at zero (a zero-error baseline means the corpus got
// too easy to discriminate engines).
func TestDifferentialErrorFactorOrdering(t *testing.T) {
	m := diffMetrics(t)
	coreF := m["probedis"].ErrorFactor()
	for name, bm := range m {
		if name == "probedis" {
			continue
		}
		f := bm.ErrorFactor()
		if f <= coreF {
			t.Errorf("%s error factor %.2f <= core %.2f", name, f, coreF)
		}
		if f == 0 {
			t.Errorf("%s made zero errors — corpus no longer discriminates", name)
		}
	}
}

// TestDifferentialStableUnderReruns guards the determinism the whole
// suite leans on: scoring the same engine on a freshly rebuilt (same
// spec) corpus must reproduce identical metrics.
func TestDifferentialStableUnderReruns(t *testing.T) {
	r1 := smallRunner(t)
	r2 := smallRunner(t)
	d := core.New(r1.Model)
	a := scoreCorpus(d, r1.Corpus)
	b := scoreCorpus(d, r2.Corpus)
	if a != b {
		t.Errorf("metrics differ across identical corpus builds:\n%+v\n%+v", a, b)
	}
}
