package eval

import (
	"fmt"
	"sort"
	"time"

	"probedis/internal/core"
	"probedis/internal/obs"
	"probedis/internal/superset"
)

// T8StageCost profiles the pipeline itself: every corpus binary is
// disassembled under a trace span, and the spans are folded into a
// per-stage cost table (aggregated by span path, e.g. "hints/calltarget").
// Runs are serial so stage durations are additive and the percentages
// meaningful.
func (r *Runner) T8StageCost() Table {
	t := Table{
		ID:      "T8",
		Title:   "Per-stage pipeline cost (traced serial runs, full corpus)",
		Columns: []string{"stage", "calls", "time", "% of total"},
	}
	d := core.New(r.Model, core.WithWorkers(1))

	type agg struct {
		dur   time.Duration
		calls int
	}
	stages := map[string]*agg{}
	var order []string
	var total time.Duration
	record := func(path string, dur time.Duration) {
		a := stages[path]
		if a == nil {
			a = &agg{}
			stages[path] = a
			order = append(order, path)
		}
		a.dur += dur
		a.calls++
	}

	fallbacksBefore := superset.ScanFallbacks()
	var corpusBytes int64
	for _, b := range r.Corpus {
		corpusBytes += int64(len(b.Code))
		tr := obs.NewTraceTimeOnly("disassemble")
		d.DisassembleSectionTrace(b.Code, b.Base, int(b.Entry-b.Base), nil, tr)
		tr.End()
		total += tr.Dur
		// Fold the span tree into path-keyed aggregates; the root span is
		// the denominator, not a row.
		var walk func(s *obs.Span, prefix string)
		walk = func(s *obs.Span, prefix string) {
			for _, c := range s.Children() {
				path := c.Name
				if prefix != "" {
					path = prefix + "/" + c.Name
				}
				record(path, c.Dur)
				walk(c, path)
			}
		}
		walk(tr, "")
	}

	// Keep first-seen order for top-level stages (pipeline order), but
	// sort each stage's sub-stages by cost so the expensive analyses lead.
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := topOf(order[i]), topOf(order[j])
		if pi != pj {
			return false // preserve pipeline order across top-level groups
		}
		return stages[order[i]].dur > stages[order[j]].dur
	})
	for _, path := range order {
		a := stages[path]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(a.dur) / float64(total)
		}
		t.AddRow(path, itoa(a.calls), a.dur.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", pct))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total traced wall time: %s over %d binaries",
		total.Round(time.Millisecond), len(r.Corpus)))
	fallbacks := superset.ScanFallbacks() - fallbacksBefore
	pct := 0.0
	if corpusBytes > 0 {
		pct = 100 * float64(fallbacks) / float64(corpusBytes)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"superset scan fallbacks to the full decoder: %d of %d offsets (%.2f%%)",
		fallbacks, corpusBytes, pct))
	return t
}

// topOf returns the first path segment of a stage path.
func topOf(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}
