package eval

import (
	"fmt"
	"strings"
	"time"

	"probedis/internal/analysis"
	"probedis/internal/baseline"
	"probedis/internal/core"
	"probedis/internal/correct"
	"probedis/internal/dis"
	"probedis/internal/stats"
	"probedis/internal/superset"
	"probedis/internal/synth"
)

// Runner executes the reconstructed paper experiments. Create with
// NewRunner (or populate the fields for custom corpora).
type Runner struct {
	Model  *stats.Model
	Corpus []*synth.Binary
}

// NewRunner builds the default runner: lazily-trained model + T1 corpus.
func NewRunner() (*Runner, error) {
	corpus, err := DefaultCorpus().Build()
	if err != nil {
		return nil, err
	}
	return &Runner{Model: core.DefaultModel(), Corpus: corpus}, nil
}

// engines returns the comparison set: the core system plus baselines.
func (r *Runner) engines() []dis.Engine {
	return append([]dis.Engine{core.New(r.Model)}, baseline.Engines(r.Model)...)
}

// scoreCorpus runs one engine over a corpus and accumulates metrics.
func scoreCorpus(e dis.Engine, corpus []*synth.Binary) Metrics {
	var total Metrics
	for _, b := range corpus {
		res := e.Disassemble(b.Code, b.Base, int(b.Entry-b.Base))
		total.Add(Score(b, res))
	}
	return total
}

// T1Corpus summarises the evaluation corpus per profile.
func (r *Runner) T1Corpus() Table {
	t := Table{
		ID:    "T1",
		Title: "Evaluation corpus (synthetic, byte-exact ground truth)",
		Columns: []string{"profile", "binaries", "bytes", "code", "data",
			"jumptable", "string", "const", "padding", "funcs", "insts"},
	}
	type agg struct {
		bins, bytes, funcs, insts int
		counts                    [synth.NumClasses]int
	}
	per := map[string]*agg{}
	var order []string
	for _, b := range r.Corpus {
		name := profileOf(b.Name)
		a := per[name]
		if a == nil {
			a = &agg{}
			per[name] = a
			order = append(order, name)
		}
		a.bins++
		a.bytes += len(b.Code)
		a.funcs += len(b.Truth.FuncStarts)
		a.insts += b.Truth.NumInsts()
		c := b.Truth.Counts()
		for i := range c {
			a.counts[i] += c[i]
		}
	}
	for _, name := range order {
		a := per[name]
		data := a.bytes - a.counts[synth.ClassCode]
		t.AddRow(name, itoa(a.bins), itoa(a.bytes), itoa(a.counts[synth.ClassCode]),
			itoa(data), itoa(a.counts[synth.ClassJumpTable]),
			itoa(a.counts[synth.ClassString]), itoa(a.counts[synth.ClassConst]),
			itoa(a.counts[synth.ClassPadding]), itoa(a.funcs), itoa(a.insts))
	}
	return t
}

// T2Accuracy is the headline comparison: instruction-level accuracy of the
// core system against every baseline.
func (r *Runner) T2Accuracy() Table {
	t := Table{
		ID:    "T2",
		Title: "Instruction-level accuracy vs baselines (full corpus)",
		Columns: []string{"engine", "byte-err", "inst-prec", "inst-recall",
			"inst-F1", "err/1k-inst", "vs-core"},
	}
	engines := r.engines()
	factors := make([]float64, len(engines))
	var rows [][]string
	for i, e := range engines {
		m := scoreCorpus(e, r.Corpus)
		factors[i] = m.ErrorFactor()
		rows = append(rows, []string{
			e.Name(), fmtPct(m.ByteErrRate()), fmtF(m.InstPrecision()),
			fmtF(m.InstRecall()), fmtF(m.InstF1()), fmtF(m.ErrorFactor()), "",
		})
	}
	coreFactor := factors[0]
	best := 0.0
	for i := range rows {
		ratio := 0.0
		if coreFactor > 0 {
			ratio = factors[i] / coreFactor
		}
		rows[i][6] = fmt.Sprintf("%.1fx", ratio)
		if i > 0 && (best == 0 || factors[i] < best) {
			best = factors[i]
		}
		t.AddRow(rows[i]...)
	}
	if coreFactor > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"core error factor %.2f vs best baseline %.2f => %.1fx more accurate (paper: 3-4x)",
			coreFactor, best, best/coreFactor))
	}
	return t
}

// T3DataCategories reports per-category embedded-data detection.
func (r *Runner) T3DataCategories() Table {
	t := Table{
		ID:      "T3",
		Title:   "Embedded-data detection rate by category (bytes classified data)",
		Columns: []string{"engine", "jumptable", "string", "const", "padding", "all-data"},
	}
	for _, e := range r.engines() {
		m := scoreCorpus(e, r.Corpus)
		all := 0
		allTot := 0
		for _, c := range []synth.ByteClass{synth.ClassJumpTable, synth.ClassString,
			synth.ClassConst, synth.ClassPadding} {
			all += m.DataByClass[c]
			allTot += m.DataTotal[c]
		}
		t.AddRow(e.Name(),
			fmtPct(m.DataRecall(synth.ClassJumpTable)),
			fmtPct(m.DataRecall(synth.ClassString)),
			fmtPct(m.DataRecall(synth.ClassConst)),
			fmtPct(m.DataRecall(synth.ClassPadding)),
			fmtPct(ratio(all, allTot)))
	}
	return t
}

// T4Ablation disables one component at a time.
func (r *Runner) T4Ablation() Table {
	t := Table{
		ID:      "T4",
		Title:   "Component ablation (core system)",
		Columns: []string{"configuration", "byte-err", "inst-F1", "err/1k-inst"},
	}
	configs := []struct {
		name string
		opts []core.Option
	}{
		{"full system", nil},
		{"- statistics", []core.Option{core.WithoutStats()}},
		{"- behavioral penalty", []core.Option{core.WithoutBehavior()}},
		{"- jump tables", []core.Option{core.WithoutJumpTables()}},
		{"- prioritization", []core.Option{core.WithoutPrioritization()}},
	}
	for _, c := range configs {
		d := core.New(r.Model, c.opts...)
		m := scoreCorpus(d, r.Corpus)
		t.AddRow(c.name, fmtPct(m.ByteErrRate()), fmtF(m.InstF1()), fmtF(m.ErrorFactor()))
	}
	return t
}

// T5Throughput times each engine over the corpus.
func (r *Runner) T5Throughput() Table {
	t := Table{
		ID:      "T5",
		Title:   "Disassembly throughput (full corpus, single-threaded)",
		Columns: []string{"engine", "bytes", "time", "MB/s"},
	}
	var totalBytes int
	for _, b := range r.Corpus {
		totalBytes += len(b.Code)
	}
	for _, e := range r.engines() {
		start := time.Now()
		for _, b := range r.Corpus {
			e.Disassemble(b.Code, b.Base, int(b.Entry-b.Base))
		}
		el := time.Since(start)
		mbs := float64(totalBytes) / el.Seconds() / 1e6
		t.AddRow(e.Name(), itoa(totalBytes), el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", mbs))
	}
	return t
}

// T6FunctionStarts measures function-entry identification.
func (r *Runner) T6FunctionStarts() Table {
	t := Table{
		ID:      "T6",
		Title:   "Function-start identification",
		Columns: []string{"engine", "func-prec", "func-recall", "func-F1"},
	}
	for _, e := range r.engines() {
		m := scoreCorpus(e, r.Corpus)
		t.AddRow(e.Name(), fmtF(m.FuncPrecision()), fmtF(m.FuncRecall()), fmtF(m.FuncF1()))
	}
	return t
}

// F1Density sweeps embedded-data density and reports the error factor per
// engine (the figure's series).
func (r *Runner) F1Density() (Table, error) {
	t := Table{
		ID:      "F1",
		Title:   "Error factor vs embedded-data density (err/1k-inst)",
		Columns: []string{"density"},
	}
	engines := r.engines()
	for _, e := range engines {
		t.Columns = append(t.Columns, e.Name())
	}
	for _, density := range []float64{0.25, 0.5, 1, 2, 4} {
		spec := DefaultCorpus()
		spec.PerProfile = 2
		spec.DataDensity = density
		corpus, err := spec.Build()
		if err != nil {
			return t, err
		}
		row := []string{fmt.Sprintf("%.2fx", density)}
		for _, e := range engines {
			m := scoreCorpus(e, corpus)
			row = append(row, fmtF(m.ErrorFactor()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// F2Scaling measures accuracy and runtime as binaries grow.
func (r *Runner) F2Scaling() (Table, error) {
	t := Table{
		ID:      "F2",
		Title:   "Core accuracy and runtime vs binary size",
		Columns: []string{"funcs", "bytes", "err/1k-inst", "time", "MB/s"},
	}
	d := core.New(r.Model)
	for _, funcs := range []int{50, 100, 200, 400, 800} {
		b, err := synth.Generate(synth.Config{
			Seed: 900 + int64(funcs), Profile: synth.ProfileComplex, NumFuncs: funcs,
		})
		if err != nil {
			return t, err
		}
		start := time.Now()
		res := d.Disassemble(b.Code, b.Base, int(b.Entry-b.Base))
		el := time.Since(start)
		m := Score(b, res)
		t.AddRow(itoa(funcs), itoa(len(b.Code)), fmtF(m.ErrorFactor()),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", float64(len(b.Code))/el.Seconds()/1e6))
	}
	return t, nil
}

// F3Convergence replays prioritized correction with growing hint budgets
// on one binary, showing how errors fall as hints commit.
func (r *Runner) F3Convergence() (Table, error) {
	t := Table{
		ID:      "F3",
		Title:   "Error-correction convergence (complex binary)",
		Columns: []string{"hint-budget", "byte-err", "inst-F1"},
	}
	b, err := synth.Generate(synth.Config{Seed: 777, Profile: synth.ProfileComplex, NumFuncs: 100})
	if err != nil {
		return t, err
	}
	d := core.New(r.Model)
	g := superset.Build(b.Code, b.Base)
	viable := analysis.Viability(g)
	scores := r.Model.ScoreAll(g, 8)
	hints, _ := d.CollectHints(g, viable, int(b.Entry-b.Base), scores)

	budgets := []int{1, 10, 100, 1000, 5000, 20000, len(hints)}
	prev := -1
	for _, budget := range budgets {
		if budget > len(hints) {
			budget = len(hints)
		}
		if budget == prev {
			continue
		}
		prev = budget
		out := correct.Run(g, viable, hints, correct.Options{MaxHints: budget, Scores: scores})
		res := dis.NewResult(b.Base, len(b.Code))
		for i, s := range out.State {
			res.IsCode[i] = s == correct.Code
		}
		copy(res.InstStart, out.InstStart)
		m := Score(b, res)
		t.AddRow(itoa(budget), fmtPct(m.ByteErrRate()), fmtF(m.InstF1()))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total hints: %d", len(hints)))
	return t, nil
}

// F4Threshold sweeps the statistical decision boundary.
func (r *Runner) F4Threshold() Table {
	t := Table{
		ID:      "F4",
		Title:   "Statistical threshold sweep (full pipeline, ROC-style points)",
		Columns: []string{"theta", "byte-FP-rate", "byte-FN-rate", "err/1k-inst"},
	}
	for _, theta := range []float64{-4, -2, -1, 0, 1, 2, 4} {
		d := core.New(r.Model, core.WithThreshold(theta))
		m := scoreCorpus(d, r.Corpus)
		var dataBytes int
		for _, tot := range m.DataTotal {
			dataBytes += tot
		}
		codeBytes := m.Bytes - dataBytes
		t.AddRow(fmt.Sprintf("%+.1f", theta),
			fmtPct(ratio(m.ByteFP, dataBytes)),
			fmtPct(ratio(m.ByteFN, codeBytes)),
			fmtF(m.ErrorFactor()))
	}
	return t
}

// T7PerProfile breaks the headline accuracy down by generation profile —
// the compiler/optimization-level axis of the paper's evaluation.
func (r *Runner) T7PerProfile() Table {
	t := Table{
		ID:      "T7",
		Title:   "Error factor by profile (err/1k-inst)",
		Columns: []string{"profile"},
	}
	engines := r.engines()
	for _, e := range engines {
		t.Columns = append(t.Columns, e.Name())
	}
	byProfile := map[string][]*synth.Binary{}
	var order []string
	for _, b := range r.Corpus {
		name := profileOf(b.Name)
		if _, ok := byProfile[name]; !ok {
			order = append(order, name)
		}
		byProfile[name] = append(byProfile[name], b)
	}
	for _, name := range order {
		row := []string{name}
		for _, e := range engines {
			m := scoreCorpus(e, byProfile[name])
			row = append(row, fmtF(m.ErrorFactor()))
		}
		t.AddRow(row...)
	}
	return t
}

// T9TierSettlement quantifies the tiered correction pre-pass per
// profile: how much of each binary the structural hints settle outright
// (bytes that never see statistical scoring), how many contested
// windows remain, and how far the hint stream shrinks versus the
// single-phase pipeline.
func (r *Runner) T9TierSettlement() Table {
	t := Table{
		ID:      "T9",
		Title:   "Tiered correction: structural settlement by profile",
		Columns: []string{"profile", "bytes", "settled", "windows", "hints", "hints(1-phase)", "hint-cut"},
	}
	tiered := core.New(r.Model)
	single := core.New(r.Model, core.WithoutTiering())
	byProfile := map[string][]*synth.Binary{}
	var order []string
	for _, b := range r.Corpus {
		name := profileOf(b.Name)
		if _, ok := byProfile[name]; !ok {
			order = append(order, name)
		}
		byProfile[name] = append(byProfile[name], b)
	}
	for _, name := range order {
		var bytes, settled, windows, hintsTiered, hintsSingle int
		for _, b := range byProfile[name] {
			entry := int(b.Entry - b.Base)
			dt := tiered.DisassembleSection(b.Code, b.Base, entry, nil)
			ds := single.DisassembleSection(b.Code, b.Base, entry, nil)
			if dt.Tier != nil {
				bytes += dt.Tier.Total
				settled += dt.Tier.SettledBytes
				windows += len(dt.Tier.Windows)
			}
			hintsTiered += dt.Hints
			hintsSingle += ds.Hints
		}
		t.AddRow(name, itoa(bytes), fmtPct(ratio(settled, bytes)), itoa(windows),
			itoa(hintsTiered), itoa(hintsSingle),
			fmtPct(1-ratio(hintsTiered, hintsSingle)))
	}
	return t
}

// E1Adversarial is the extension experiment: accuracy on binaries with
// deliberate anti-disassembly junk after unconditional jumps (never
// executed, crafted to misalign sequential decoders).
func (r *Runner) E1Adversarial() (Table, error) {
	t := Table{
		ID:      "E1",
		Title:   "Extension: anti-disassembly junk (adversarial profile)",
		Columns: []string{"engine", "byte-err", "inst-F1", "err/1k-inst", "junk-detected"},
	}
	var corpus []*synth.Binary
	for seed := int64(1); seed <= 5; seed++ {
		b, err := synth.Generate(synth.Config{
			Seed: seed, Profile: synth.ProfileAdversarial, NumFuncs: 60,
		})
		if err != nil {
			return t, err
		}
		corpus = append(corpus, b)
	}
	for _, e := range r.engines() {
		m := scoreCorpus(e, corpus)
		t.AddRow(e.Name(), fmtPct(m.ByteErrRate()), fmtF(m.InstF1()),
			fmtF(m.ErrorFactor()), fmtPct(m.DataRecall(synth.ClassJunk)))
	}
	return t, nil
}

// E3AdversarialFamily breaks accuracy down by adversarial profile — one
// row per SoK-taxonomy construct (overlapping instructions, computed
// mid-instruction jumps, inline jump tables, literal pools, fake
// prologues, obfuscator idioms), so a regression in one hostile shape is
// visible in isolation instead of averaged away.
func (r *Runner) E3AdversarialFamily() (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "Extension: adversarial profile family (core engine per profile)",
		Columns: []string{"profile", "bytes", "insts", "byte-err", "inst-F1", "err/1k-inst", "func-F1"},
	}
	d := core.New(r.Model)
	for _, p := range synth.AdversarialProfiles {
		spec := CorpusSpec{FirstSeed: 1, PerProfile: 3, Funcs: 60, Profiles: []synth.Profile{p}}
		corpus, err := spec.Build()
		if err != nil {
			return t, err
		}
		var bytes, insts int
		for _, b := range corpus {
			bytes += len(b.Code)
			insts += b.Truth.NumInsts()
		}
		m := scoreCorpus(d, corpus)
		t.AddRow(p.Name, itoa(bytes), itoa(insts), fmtPct(m.ByteErrRate()),
			fmtF(m.InstF1()), fmtF(m.ErrorFactor()), fmtF(m.FuncF1()))
	}
	return t, nil
}

// All runs every experiment in order.
func (r *Runner) All() ([]Table, error) {
	var out []Table
	out = append(out, r.T1Corpus(), r.T2Accuracy(), r.T3DataCategories(),
		r.T4Ablation(), r.T5Throughput(), r.T6FunctionStarts(), r.T7PerProfile(),
		r.T8StageCost(), r.T9TierSettlement())
	f1, err := r.F1Density()
	if err != nil {
		return nil, err
	}
	f2, err := r.F2Scaling()
	if err != nil {
		return nil, err
	}
	f3, err := r.F3Convergence()
	if err != nil {
		return nil, err
	}
	e1, err := r.E1Adversarial()
	if err != nil {
		return nil, err
	}
	e2, err := r.E2Rewrite()
	if err != nil {
		return nil, err
	}
	e3, err := r.E3AdversarialFamily()
	if err != nil {
		return nil, err
	}
	t10, err := r.T10ShardScaling()
	if err != nil {
		return nil, err
	}
	out = append(out, t10, f1, f2, f3, r.F4Threshold(), e1, e2, e3)
	return out, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// profileOf extracts the profile name from a binary name of the form
// "<profile>-s<seed>-n<funcs>" (profile names may themselves contain
// dashes, so strip the two known suffix fields from the right).
func profileOf(name string) string {
	n := strings.LastIndex(name, "-n")
	if n < 0 {
		return name
	}
	s := strings.LastIndex(name[:n], "-s")
	if s < 0 {
		return name
	}
	return name[:s]
}
