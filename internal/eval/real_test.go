package eval

import (
	"path/filepath"
	"testing"

	"probedis/internal/core"
)

const realDir = "../../testdata/real"

// TestRealCorpusLoads: every committed fixture pairs a stripped ELF with
// a parsable truth record. (Truth *consistency* against the bytes is the
// oracle's InvTruth check, covered in internal/oracle's tests — the
// oracle package sits above eval and cannot be imported from here.)
func TestRealCorpusLoads(t *testing.T) {
	corpus, err := LoadReal(realDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 2 {
		t.Fatalf("real corpus has %d binaries, want >= 2 (asm + C fixture)", len(corpus))
	}
	for _, b := range corpus {
		if b.Truth.NumInsts() == 0 || len(b.Truth.FuncStarts) == 0 {
			t.Errorf("%s: truth has %d insts, %d funcs", b.Name, b.Truth.NumInsts(), len(b.Truth.FuncStarts))
		}
	}
}

// TestRealCorpusAccuracy: the core engine scores sanely on toolchain
// output — the T2-style metrics extend beyond the synthetic corpus.
// Bounds are deliberately loose; exact regression gating is cmd/accdiff's
// job on the pinned synthetic corpus.
func TestRealCorpusAccuracy(t *testing.T) {
	corpus, err := LoadReal(realDir)
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(core.DefaultModel())
	m := scoreCorpus(d, corpus)
	if r := m.ByteErrRate(); r > 0.10 {
		t.Errorf("byte error rate %.2f%% on real corpus, want <= 10%%", r*100)
	}
	if f1 := m.InstF1(); f1 < 0.90 {
		t.Errorf("inst F1 %.3f on real corpus, want >= 0.90", f1)
	}
}

// TestLoadRealBinaryRejects covers the loader's failure paths.
func TestLoadRealBinaryRejects(t *testing.T) {
	if _, err := LoadRealBinary(
		filepath.Join(realDir, "missing.elf"), filepath.Join(realDir, "strtab.truth")); err == nil {
		t.Error("missing ELF accepted")
	}
	if _, err := LoadRealBinary(
		filepath.Join(realDir, "strtab.elf"), filepath.Join(realDir, "missing.truth")); err == nil {
		t.Error("missing truth accepted")
	}
	// Mismatched pair: cfun's truth describes a different section size.
	if _, err := LoadRealBinary(
		filepath.Join(realDir, "strtab.elf"), filepath.Join(realDir, "cfun.truth")); err == nil {
		t.Error("mismatched ELF/truth pair accepted")
	}
	if _, err := LoadReal(t.TempDir()); err == nil {
		t.Error("empty corpus dir accepted")
	}
}
