package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"probedis/internal/elfx"
	"probedis/internal/synth"
)

// Real-binary corpus support: binaries built by a real toolchain and
// checked into testdata/real/ as a stripped executable plus a
// probedis-truth file extracted by cmd/truthgen from evaluation-only
// compiler metadata (assembler listings, symtab, DWARF). Loaded here
// into the same synth.Binary shape the synthetic corpus uses, so every
// experiment and scorer applies unchanged.

// LoadReal loads every <name>.elf / <name>.truth pair under dir.
func LoadReal(dir string) ([]*synth.Binary, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.truth"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*synth.Binary
	for _, tp := range paths {
		name := strings.TrimSuffix(filepath.Base(tp), ".truth")
		b, err := LoadRealBinary(filepath.Join(dir, name+".elf"), tp)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: no .truth files under %s", dir)
	}
	return out, nil
}

// LoadRealBinary pairs one stripped executable with its truth file. The
// truth's recorded base selects the executable section it describes;
// the ELF entry point seeds the pipeline exactly as for synthetic
// binaries (entry outside that section falls back to offset 0).
func LoadRealBinary(elfPath, truthPath string) (*synth.Binary, error) {
	tf, err := os.Open(truthPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	truth, base, err := synth.ReadTruth(tf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", truthPath, err)
	}
	img, err := os.ReadFile(elfPath)
	if err != nil {
		return nil, err
	}
	f, err := elfx.Parse(img)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", elfPath, err)
	}
	for _, sec := range f.ExecutableSections() {
		if sec.Addr != base {
			continue
		}
		if int(sec.Size) != len(truth.Classes) {
			return nil, fmt.Errorf("%s: section %#x has %d bytes, truth describes %d",
				elfPath, base, sec.Size, len(truth.Classes))
		}
		entry := f.Entry
		if entry < base || entry >= base+sec.Size {
			entry = base
		}
		return &synth.Binary{
			Name:  strings.TrimSuffix(filepath.Base(elfPath), ".elf"),
			Code:  sec.Data,
			Base:  base,
			Entry: entry,
			Truth: truth,
		}, nil
	}
	return nil, fmt.Errorf("%s: no executable section at truth base %#x", elfPath, base)
}

// E4Real scores every engine on the real-binary corpus — toolchain
// output with truth extracted from compiler artifacts rather than
// generated, closing the synthetic-only evaluation gap.
func (r *Runner) E4Real(dir string) (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "Extension: real binaries (truth from compiler artifacts)",
		Columns: []string{"engine", "byte-err", "inst-F1", "err/1k-inst", "func-F1"},
	}
	corpus, err := LoadReal(dir)
	if err != nil {
		return t, err
	}
	var names []string
	for _, b := range corpus {
		names = append(names, fmt.Sprintf("%s (%d bytes)", b.Name, len(b.Code)))
	}
	t.Notes = append(t.Notes, "corpus: "+strings.Join(names, ", "))
	for _, e := range r.engines() {
		m := scoreCorpus(e, corpus)
		t.AddRow(e.Name(), fmtPct(m.ByteErrRate()), fmtF(m.InstF1()),
			fmtF(m.ErrorFactor()), fmtF(m.FuncF1()))
	}
	return t, nil
}
