package eval

import (
	"fmt"

	"probedis/internal/synth"
)

// CorpusSpec parameterises an evaluation corpus. Seeds start at FirstSeed
// and increment; they must stay disjoint from the training corpus (which
// uses seeds >= 1,000,000 — see core.TrainModel).
type CorpusSpec struct {
	FirstSeed   int64
	PerProfile  int
	Funcs       int
	Profiles    []synth.Profile
	DataDensity float64 // 0 means 1.0 (profile defaults)
}

// DefaultCorpus is the corpus used by the headline experiments (T1-T5).
func DefaultCorpus() CorpusSpec {
	return CorpusSpec{
		FirstSeed:  1,
		PerProfile: 5,
		Funcs:      60,
		Profiles:   synth.DefaultProfiles,
	}
}

// Build generates the corpus.
func (s CorpusSpec) Build() ([]*synth.Binary, error) {
	seed := s.FirstSeed
	var out []*synth.Binary
	for _, p := range s.Profiles {
		if s.DataDensity > 0 {
			p = p.ScaleData(s.DataDensity)
		}
		for i := 0; i < s.PerProfile; i++ {
			b, err := synth.Generate(synth.Config{Seed: seed, Profile: p, NumFuncs: s.Funcs})
			if err != nil {
				return nil, fmt.Errorf("eval: corpus seed %d: %w", seed, err)
			}
			out = append(out, b)
			seed++
		}
	}
	return out, nil
}
