package eval

import (
	"strconv"
	"strings"
	"testing"

	"probedis/internal/baseline"
	"probedis/internal/core"
	"probedis/internal/dis"
	"probedis/internal/synth"
)

func smallRunner(t testing.TB) *Runner {
	t.Helper()
	spec := DefaultCorpus()
	spec.PerProfile = 2
	spec.Funcs = 40
	corpus, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{Model: core.DefaultModel(), Corpus: corpus}
}

func TestScoreAgainstPerfectResult(t *testing.T) {
	b, err := synth.Generate(synth.Config{Seed: 80, Profile: synth.ProfileO2, NumFuncs: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Build a result straight from ground truth: zero error.
	res := dis.NewResult(b.Base, len(b.Code))
	for i, c := range b.Truth.Classes {
		res.IsCode[i] = c == synth.ClassCode
	}
	copy(res.InstStart, b.Truth.InstStart)
	res.FuncStarts = append(res.FuncStarts, b.Truth.FuncStarts...)

	m := Score(b, res)
	if m.ByteErrRate() != 0 || m.InstFP != 0 || m.InstFN != 0 {
		t.Errorf("perfect result scored: %+v", m)
	}
	if m.InstF1() != 1 || m.FuncF1() != 1 {
		t.Errorf("perfect F1: inst=%v func=%v", m.InstF1(), m.FuncF1())
	}
	if m.ErrorFactor() != 0 {
		t.Errorf("perfect error factor = %v", m.ErrorFactor())
	}
}

func TestScoreAgainstAllDataResult(t *testing.T) {
	b, err := synth.Generate(synth.Config{Seed: 81, Profile: synth.ProfileO0, NumFuncs: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := dis.NewResult(b.Base, len(b.Code)) // everything data, no insts
	m := Score(b, res)
	if m.InstRecall() != 0 || m.InstTP != 0 {
		t.Errorf("all-data result: %+v", m)
	}
	if m.DataRecall(synth.ClassString) != 1 && m.DataTotal[synth.ClassString] > 0 {
		t.Error("all-data result should have perfect data recall")
	}
	if m.ByteFN != b.Truth.CodeBytes() {
		t.Errorf("ByteFN = %d, want %d", m.ByteFN, b.Truth.CodeBytes())
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Bytes: 10, ByteFP: 1, InstTP: 5, TrueInsts: 6, InstFN: 1}
	b := Metrics{Bytes: 20, ByteFN: 2, InstTP: 7, TrueInsts: 7}
	a.Add(b)
	if a.Bytes != 30 || a.ByteFP != 1 || a.ByteFN != 2 || a.InstTP != 12 || a.TrueInsts != 13 {
		t.Errorf("Add: %+v", a)
	}
}

// TestHeadlineClaim is the abstract's check: the combined system is at
// least 3x more accurate (error factor) than the best baseline.
func TestHeadlineClaim(t *testing.T) {
	r := smallRunner(t)
	coreM := scoreCorpus(core.New(r.Model), r.Corpus)
	coreF := coreM.ErrorFactor()
	if coreF <= 0 {
		t.Skip("core made zero errors; ratio undefined (better than any claim)")
	}
	best := -1.0
	bestName := ""
	for _, e := range baseline.Engines(r.Model) {
		m := scoreCorpus(e, r.Corpus)
		f := m.ErrorFactor()
		if best < 0 || f < best {
			best = f
			bestName = e.Name()
		}
	}
	t.Logf("core=%.2f best-baseline(%s)=%.2f ratio=%.1fx", coreF, bestName, best, best/coreF)
	if best/coreF < 3 {
		t.Errorf("accuracy ratio %.2fx < 3x (core %.2f, best baseline %.2f)",
			best/coreF, coreF, best)
	}
}

func TestT1CorpusShape(t *testing.T) {
	r := smallRunner(t)
	tab := r.T1Corpus()
	if len(tab.Rows) != len(synth.DefaultProfiles) {
		t.Fatalf("T1 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		bins, _ := strconv.Atoi(row[1])
		if bins != 2 {
			t.Errorf("profile %s: binaries = %s", row[0], row[1])
		}
		codeB, _ := strconv.Atoi(row[3])
		dataB, _ := strconv.Atoi(row[4])
		if codeB == 0 || dataB == 0 {
			t.Errorf("profile %s: code=%d data=%d", row[0], codeB, dataB)
		}
	}
}

func TestT4AblationShowsComponentValue(t *testing.T) {
	r := smallRunner(t)
	tab := r.T4Ablation()
	if len(tab.Rows) != 5 {
		t.Fatalf("T4 rows = %d", len(tab.Rows))
	}
	full, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	weakened := 0
	for _, row := range tab.Rows[1:] {
		f, _ := strconv.ParseFloat(row[3], 64)
		if f > full {
			weakened++
		}
	}
	// At least three of four ablations must hurt accuracy.
	if weakened < 3 {
		t.Errorf("only %d/4 ablations degraded the error factor (full=%v rows=%v)",
			weakened, full, tab.Rows)
	}
}

func TestF4ThresholdTradeoff(t *testing.T) {
	r := smallRunner(t)
	tab := r.F4Threshold()
	if len(tab.Rows) < 5 {
		t.Fatalf("F4 rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	// Raising theta (stricter about code) must not increase the FP rate.
	first := parse(tab.Rows[0][1])
	last := parse(tab.Rows[len(tab.Rows)-1][1])
	if last > first+0.01 {
		t.Errorf("byte FP rate grew with theta: %.4f -> %.4f", first, last)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "TX",
		Title:   "demo",
		Columns: []string{"a", "bbb"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"TX — demo", "a    bbb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestProfileOf(t *testing.T) {
	cases := map[string]string{
		"gcc-O0-s5-n60":  "gcc-O0",
		"complex-s1-n10": "complex",
		"icc-vec-s2-n3":  "icc-vec",
		"weird":          "weird",
	}
	for in, want := range cases {
		if got := profileOf(in); got != want {
			t.Errorf("profileOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestF3ConvergenceMonotone(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.F3Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("F3 rows = %d", len(tab.Rows))
	}
	// F1 at the last budget must beat F1 at the first.
	first, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][2], 64)
	if last <= first {
		t.Errorf("convergence: F1 did not improve (%.3f -> %.3f)", first, last)
	}
}

// TestE2RewriteOrdering: the instrumentation experiment must show the core
// engine strictly dominating every baseline (the paper's thesis).
func TestE2RewriteOrdering(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.E2Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("E2 rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	coreRate := parse(tab.Rows[0][4])
	if coreRate < 99 {
		t.Errorf("core instrumentation success %.1f%% < 99%%", coreRate)
	}
	for _, row := range tab.Rows[1:] {
		if r := parse(row[4]); r >= coreRate {
			t.Errorf("baseline %s success %.1f%% >= core %.1f%%", row[0], r, coreRate)
		}
	}
}

// TestAllExperimentsRun smoke-tests every experiment runner on a small
// corpus: each must produce a non-empty, well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	r := smallRunner(t)
	type run struct {
		name string
		get  func() (Table, error)
	}
	noErr := func(f func() Table) func() (Table, error) {
		return func() (Table, error) { return f(), nil }
	}
	runs := []run{
		{"T1", noErr(r.T1Corpus)},
		{"T2", noErr(r.T2Accuracy)},
		{"T3", noErr(r.T3DataCategories)},
		{"T5", noErr(r.T5Throughput)},
		{"T6", noErr(r.T6FunctionStarts)},
		{"T7", noErr(r.T7PerProfile)},
		{"T8", noErr(r.T8StageCost)},
		{"T9", noErr(r.T9TierSettlement)},
		{"F2", r.F2Scaling},
		{"E1", r.E1Adversarial},
	}
	for _, rn := range runs {
		tab, err := rn.get()
		if err != nil {
			t.Fatalf("%s: %v", rn.name, err)
		}
		if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Errorf("%s: empty table", rn.name)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d != %d columns", rn.name, len(row), len(tab.Columns))
			}
		}
		var text, csv strings.Builder
		tab.Render(&text)
		if err := tab.RenderCSV(&csv); err != nil {
			t.Errorf("%s: csv render: %v", rn.name, err)
		}
		if text.Len() == 0 || csv.Len() == 0 {
			t.Errorf("%s: empty render", rn.name)
		}
	}
}
