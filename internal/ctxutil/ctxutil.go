// Package ctxutil is the pipeline's cancellation seam: a uniform,
// allocation-free checkpoint primitive every stage polls at its
// boundaries and inside its hot loops, plus a deterministic countdown
// context for tests that must cancel at an exact checkpoint.
//
// Design constraints, in order:
//
//  1. The uncancellable path must be free. Public pipeline APIs without a
//     context pass nil; Cancelled(nil) is a nil check and nothing else, so
//     the pre-context code paths keep their exact cost.
//  2. Checkpoints are coarse. Hot loops poll every few thousand offsets
//     (see the CheckInterval guidance below), so even the polled path adds
//     one interface call per block of work, far below measurement noise.
//  3. Cancellation must be testable deterministically. Cancelled re-asks
//     the context for its Done channel on every poll rather than caching
//     it, so a test context can count polls and trip itself on the k-th —
//     CancelAfterChecks below — pinning behaviour "cancelled at the n-th
//     checkpoint" without sleeps or goroutine races.
package ctxutil

import (
	"context"
	"sync"
)

// CheckInterval is the recommended number of loop iterations between
// Cancelled polls inside per-offset hot loops (superset decode, the
// corrector's retract/gap-fill scans). At typical per-offset costs of
// tens of nanoseconds a poll every 4096 offsets bounds the reaction
// latency to well under a millisecond while keeping the poll itself out
// of the profile.
const CheckInterval = 4096

// Cancelled reports whether ctx carries a cancellation signal. A nil ctx
// (the uncancellable pipeline path) is never cancelled and costs only the
// nil check. The Done channel is re-fetched on every call — see the
// package comment for why.
func Cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns the context's error, nil-safe. Stages return Err(ctx) after
// observing Cancelled(ctx), so callers always receive the canonical
// context.Canceled / context.DeadlineExceeded value.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// countdown is a Context that cancels itself after its Done method has
// been called n times. Because Cancelled fetches the Done channel on
// every poll, the n-th checkpoint anywhere in the pipeline trips it —
// deterministically, with no timing involved.
type countdown struct {
	context.Context
	mu        sync.Mutex
	remaining int
	done      chan struct{}
	closed    bool
}

// CancelAfterChecks returns a context that reports itself cancelled at
// the n-th cancellation checkpoint (n >= 1: the n-th Cancelled poll
// observes the cancellation). Tests sweep n across a pipeline run to
// prove every checkpoint aborts cleanly.
func CancelAfterChecks(parent context.Context, n int) context.Context {
	return &countdown{Context: parent, remaining: n, done: make(chan struct{})}
}

func (c *countdown) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.remaining--
		if c.remaining <= 0 {
			c.closed = true
			close(c.done)
		}
	}
	return c.done
}

func (c *countdown) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return context.Canceled
	}
	return c.Context.Err()
}
