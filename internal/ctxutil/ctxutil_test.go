package ctxutil

import (
	"context"
	"testing"
)

func TestCancelledNil(t *testing.T) {
	if Cancelled(nil) {
		t.Fatal("nil context reported cancelled")
	}
	if Err(nil) != nil {
		t.Fatal("nil context reported an error")
	}
}

func TestCancelledBackground(t *testing.T) {
	if Cancelled(context.Background()) {
		t.Fatal("background context reported cancelled")
	}
}

func TestCancelledLiveAndCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if Cancelled(ctx) {
		t.Fatal("live context reported cancelled")
	}
	cancel()
	if !Cancelled(ctx) {
		t.Fatal("cancelled context reported live")
	}
	if Err(ctx) != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", Err(ctx))
	}
}

// TestCancelAfterChecks pins the countdown semantics: exactly the n-th
// Cancelled poll (and every later one) observes the cancellation.
func TestCancelAfterChecks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10} {
		ctx := CancelAfterChecks(context.Background(), n)
		for i := 1; i < n; i++ {
			if Cancelled(ctx) {
				t.Fatalf("n=%d: cancelled at poll %d", n, i)
			}
			if ctx.Err() != nil {
				t.Fatalf("n=%d: Err != nil before trip", n)
			}
		}
		if !Cancelled(ctx) {
			t.Fatalf("n=%d: not cancelled at poll %d", n, n)
		}
		if !Cancelled(ctx) {
			t.Fatalf("n=%d: cancellation did not stick", n)
		}
		if ctx.Err() != context.Canceled {
			t.Fatalf("n=%d: Err = %v, want context.Canceled", n, ctx.Err())
		}
	}
}

// TestCancelAfterChecksParentError verifies the countdown defers to its
// parent before tripping.
func TestCancelAfterChecksParentError(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := CancelAfterChecks(parent, 100)
	if ctx.Err() != context.Canceled {
		t.Fatalf("Err = %v, want parent's context.Canceled", ctx.Err())
	}
	// The parent's Done channel is not the countdown's: polls see the
	// countdown channel, which has not tripped yet.
	if Cancelled(ctx) {
		t.Fatal("countdown tripped on first poll with n=100")
	}
}

// TestCancelAfterChecksConcurrent exercises the countdown under parallel
// polling (the superset builder polls from several workers); run with
// -race.
func TestCancelAfterChecksConcurrent(t *testing.T) {
	ctx := CancelAfterChecks(context.Background(), 64)
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func() {
			saw := false
			for i := 0; i < 100; i++ {
				if Cancelled(ctx) {
					saw = true
					break
				}
			}
			done <- saw
		}()
	}
	saw := 0
	for w := 0; w < 4; w++ {
		if <-done {
			saw++
		}
	}
	if saw == 0 {
		t.Fatal("no goroutine observed the cancellation after 400 polls")
	}
}
